// Package metrics provides the synthesis pipeline's quantitative
// instrumentation: a Collector of cheap atomic counters (SAT decisions,
// conflicts, propagations, learned clauses, WalkSAT flips, BDD nodes,
// state-graph states explored and merged, ESPRESSO passes, modular
// passes, formula sizes) carried on the context.Context alongside the
// internal/trace Tracer. Hot paths fetch the collector once with From
// and call Add on it; both are nil-safe, so an uninstrumented run pays
// only a single context lookup per coarse operation (per formula, per
// graph, per minimization — never per inner-loop iteration). The
// pipeline driver snapshots the collector at stage boundaries, giving
// per-stage counter deltas in Circuit.Stages, and cmd/bench serializes
// whole-run totals into BENCH_*.json records (internal/benchrec).
package metrics

import (
	"context"
	"sync/atomic"
)

// Kind identifies one counter.
type Kind int

// The counter kinds. Their String names are part of the BENCH_*.json
// record schema (internal/benchrec) and must stay stable.
const (
	// SATDecisions counts branching decisions of the DPLL engine.
	SATDecisions Kind = iota
	// SATConflicts counts conflicts (backtracks) of the DPLL engine.
	SATConflicts
	// SATPropagations counts unit propagations of the DPLL engine.
	SATPropagations
	// SATLearned counts clauses learned by conflict analysis.
	SATLearned
	// SATRestarts counts DPLL restarts.
	SATRestarts
	// SATFormulas counts solved SAT/BDD constraint instances.
	SATFormulas
	// SATClauses accumulates the clause counts of all encoded formulas.
	SATClauses
	// SATVars accumulates the variable counts of all encoded formulas.
	SATVars
	// WalkSATFlips counts variable flips of the local-search engine.
	WalkSATFlips
	// BDDNodes accumulates the node counts of BDD constraint solves.
	BDDNodes
	// SGStates counts state-graph states constructed (reachability
	// elaboration and CSC expansion).
	SGStates
	// SGStatesMerged counts states of the quotiented modular graphs.
	SGStatesMerged
	// EspressoExpand counts EXPAND passes of the two-level minimizer.
	EspressoExpand
	// EspressoReduce counts REDUCE passes of the two-level minimizer.
	EspressoReduce
	// Modules counts per-output modular partition passes.
	Modules
	// CacheHits counts module solves answered from the solve cache
	// (in-memory or on-disk).
	CacheHits
	// CacheMisses counts module solves the cache had to compute.
	CacheMisses
	// CacheInflight counts solves deduplicated against an identical
	// solve already in flight (singleflight).
	CacheInflight
	// SATWarmClauses accumulates the learned clauses re-seeded into DPLL
	// searches along widening/insertion chains.
	SATWarmClauses
	// SATAssumptions counts formulas solved as assumption-guarded steps of
	// a persistent incremental solver instead of fresh re-encodes.
	SATAssumptions
	// SGStatesStreamed counts expanded states emitted by the streaming
	// wave expansion (states that were never materialized into a graph).
	SGStatesStreamed
	// SGPeakFrontier is a high-water mark (recorded with Max, not Add):
	// the widest BFS wave any streaming expansion of the run reached —
	// the quantity that bounds streaming peak heap in place of total
	// state count.
	SGPeakFrontier
	// CachePeerHits counts module solves answered by a peer node's
	// cache through the remote tier (cluster cache exchange).
	CachePeerHits
	// CachePeerMisses counts remote-tier lookups that found no peer
	// record and fell through to a local solve.
	CachePeerMisses
	// ModspecCommits counts speculative module solves committed as-is by
	// the deterministic commit loop (the snapshot was still fresh and the
	// lane's cache view revalidated).
	ModspecCommits
	// ModspecAborts counts speculative module solves discarded because a
	// canonically earlier commit inserted state signals (or published
	// cache entries) the lane did not see.
	ModspecAborts
	// ModspecResolves counts modules re-solved inline on the live graph
	// after their speculative result was discarded at the commit front.
	ModspecResolves

	numKinds
)

var kindNames = [numKinds]string{
	SATDecisions:    "sat_decisions",
	SATConflicts:    "sat_conflicts",
	SATPropagations: "sat_propagations",
	SATLearned:      "sat_learned",
	SATRestarts:     "sat_restarts",
	SATFormulas:     "sat_formulas",
	SATClauses:      "sat_clauses",
	SATVars:         "sat_vars",
	WalkSATFlips:    "walksat_flips",
	BDDNodes:        "bdd_nodes",
	SGStates:        "sg_states",
	SGStatesMerged:  "sg_states_merged",
	EspressoExpand:  "espresso_expand",
	EspressoReduce:  "espresso_reduce",
	Modules:         "modules",
	CacheHits:       "modcache_hits",
	CacheMisses:     "modcache_misses",
	CacheInflight:   "modcache_inflight",
	SATWarmClauses:   "sat_warm_clauses",
	SATAssumptions:   "sat_assumptions",
	SGStatesStreamed: "sg_states_streamed",
	SGPeakFrontier:   "sg_peak_frontier",
	CachePeerHits:    "modcache_peer_hits",
	CachePeerMisses:  "modcache_peer_misses",
	ModspecCommits:   "modspec_commits",
	ModspecAborts:    "modspec_aborts",
	ModspecResolves:  "modspec_resolves",
}

// schedulingDependent marks the counters whose values depend on
// goroutine timing (how often speculation went stale) rather than on
// the problem: everything else is bit-identical for every Workers
// value, and only that deterministic subset participates in the per-run
// and per-stage deltas compared across worker counts and recorded in
// BENCH_*.json. The raw collector (and the Prometheus exposition) still
// carries them.
var schedulingDependent = [numKinds]bool{
	ModspecCommits:  true,
	ModspecAborts:   true,
	ModspecResolves: true,
}

// Deterministic reports whether the counter is independent of goroutine
// scheduling (see schedulingDependent).
func (k Kind) Deterministic() bool {
	if k < 0 || k >= numKinds {
		return false
	}
	return !schedulingDependent[k]
}

// String returns the counter's stable schema name.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return "unknown"
	}
	return kindNames[k]
}

// Kinds lists every counter kind in schema order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Collector accumulates counters. All methods are safe for concurrent
// use and nil-safe: a nil *Collector is the no-op collector, so hot
// paths need no branch beyond the receiver check Add performs itself.
type Collector struct {
	c [numKinds]atomic.Int64
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add increments counter k by n. No-op on a nil collector.
func (c *Collector) Add(k Kind, n int64) {
	if c == nil || k < 0 || k >= numKinds {
		return
	}
	c.c[k].Add(n)
}

// Max raises counter k to n when n is larger (a high-water mark, used
// for SGPeakFrontier). No-op on a nil collector. Snapshot deltas of a
// Max-maintained counter report the movement of the high-water mark
// across the window, which is zero unless the window raised it.
func (c *Collector) Max(k Kind, n int64) {
	if c == nil || k < 0 || k >= numKinds {
		return
	}
	for {
		cur := c.c[k].Load()
		if n <= cur || c.c[k].CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns counter k's current value (0 on a nil collector).
func (c *Collector) Value(k Kind) int64 {
	if c == nil || k < 0 || k >= numKinds {
		return 0
	}
	return c.c[k].Load()
}

// Reset zeroes every counter.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.c {
		c.c[i].Store(0)
	}
}

// Snapshot is a point-in-time copy of every counter.
type Snapshot [numKinds]int64

// Snapshot copies the current counter values (zero on nil).
func (c *Collector) Snapshot() Snapshot {
	var s Snapshot
	if c == nil {
		return s
	}
	for i := range s {
		s[i] = c.c[i].Load()
	}
	return s
}

// Map returns the non-zero counters keyed by their schema names; nil
// when every counter is zero.
func (c *Collector) Map() map[string]int64 { return c.Snapshot().Delta(Snapshot{}) }

// Delta returns the non-zero differences s−prev keyed by the counters'
// schema names; nil when nothing changed.
func (s Snapshot) Delta(prev Snapshot) map[string]int64 {
	var out map[string]int64
	for i := range s {
		if d := s[i] - prev[i]; d != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[Kind(i).String()] = d
		}
	}
	return out
}

// DeterministicDelta is Delta restricted to the scheduling-independent
// counters: the per-run and per-stage deltas surfaced in
// Circuit.Counters and StageStat.Counters use it, so those maps stay
// bit-identical for every Workers value even when speculation telemetry
// (modspec_*) varies run to run.
func (s Snapshot) DeterministicDelta(prev Snapshot) map[string]int64 {
	var out map[string]int64
	for i := range s {
		if schedulingDependent[i] {
			continue
		}
		if d := s[i] - prev[i]; d != 0 {
			if out == nil {
				out = make(map[string]int64)
			}
			out[Kind(i).String()] = d
		}
	}
	return out
}

// Merge folds a staged snapshot into the collector: every counter is
// added except the high-water marks (SGPeakFrontier), which are raised
// with Max. Speculative lanes accumulate into a private collector and
// merge it here only when their result commits, so a discarded lane
// leaves no trace in the run's counters.
func (c *Collector) Merge(s Snapshot) {
	if c == nil {
		return
	}
	for i := range s {
		if s[i] == 0 {
			continue
		}
		k := Kind(i)
		if k == SGPeakFrontier {
			c.Max(k, s[i])
		} else {
			c.Add(k, s[i])
		}
	}
}

type ctxKey struct{}

// With attaches a collector to the context. A nil collector returns ctx
// unchanged.
func With(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// From returns the collector carried by ctx, or nil. The nil result is
// directly usable: every Collector method no-ops on nil.
func From(ctx context.Context) *Collector {
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}
