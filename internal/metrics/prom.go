package metrics

import (
	"fmt"
	"io"
)

// kindHelp is the one-line HELP text exposed for each counter; indexed
// like kindNames.
var kindHelp = [numKinds]string{
	SATDecisions:    "Branching decisions of the DPLL engine.",
	SATConflicts:    "Conflicts (backtracks) of the DPLL engine.",
	SATPropagations: "Unit propagations of the DPLL engine.",
	SATLearned:      "Clauses learned by conflict analysis.",
	SATRestarts:     "DPLL restarts.",
	SATFormulas:     "Solved SAT/BDD constraint instances.",
	SATClauses:      "Total clause count of all encoded formulas.",
	SATVars:         "Total variable count of all encoded formulas.",
	WalkSATFlips:    "Variable flips of the local-search engine.",
	BDDNodes:        "Node counts of BDD constraint solves.",
	SGStates:        "State-graph states constructed.",
	SGStatesMerged:  "States of the quotiented modular graphs.",
	EspressoExpand:  "EXPAND passes of the two-level minimizer.",
	EspressoReduce:  "REDUCE passes of the two-level minimizer.",
	Modules:         "Per-output modular partition passes.",
	CacheHits:       "Module solves answered from the solve cache.",
	CacheMisses:     "Module solves the cache had to compute.",
	CacheInflight:   "Solves deduplicated against an in-flight solve.",
	SATWarmClauses:  "Learned clauses re-seeded into warm-started searches.",
	SATAssumptions:  "Formulas solved as assumption-guarded incremental steps.",
	SGStatesStreamed: "Expanded states emitted by the streaming wave expansion.",
	SGPeakFrontier:   "Widest BFS wave reached by any streaming expansion.",
	CachePeerHits:    "Module solves answered by a peer node's cache.",
	CachePeerMisses:  "Remote-tier lookups that found no peer record.",
	ModspecCommits:   "Speculative module solves committed as computed.",
	ModspecAborts:    "Speculative module solves discarded as stale.",
	ModspecResolves:  "Modules re-solved inline after a stale speculation.",
}

// WriteProm renders the collector's counters in the Prometheus text
// exposition format, one metric per counter kind named
// <prefix><schema name> (e.g. asyncsyn_modcache_hits). Every kind is
// emitted, including zero-valued ones, so scrapes see a stable metric
// set from the first request on. A nil collector renders all zeros.
func WriteProm(w io.Writer, prefix string, c *Collector) {
	s := c.Snapshot()
	for i := range s {
		k := Kind(i)
		name := prefix + k.String()
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, kindHelp[i], name, name, s[i])
	}
}
