package metrics

import (
	"runtime"
	"sync/atomic"
	"time"
)

// HeapWatch samples runtime.MemStats.HeapInuse on a fixed interval and
// keeps the high-water mark. cmd/bench brackets every benchmark row with
// one to record per-row peak heap (benchrec schema 4), and the streaming
// microbenchmarks report the same number as a custom metric for the
// cmd/allocheck gate. Sampling is deliberately coarse — ReadMemStats
// stops the world for microseconds — so the watch measures the workload
// without distorting it; short-lived spikes between samples are missed,
// which is fine for the ≥2× materialization regressions the gate exists
// to catch.
type HeapWatch struct {
	peak atomic.Uint64
	stop chan struct{}
	done chan struct{}
}

// WatchHeap starts sampling HeapInuse every interval (minimum 1ms,
// default 5ms when interval <= 0) until Stop is called. One sample is
// taken synchronously before returning, so even a workload shorter than
// the interval records a baseline.
func WatchHeap(interval time.Duration) *HeapWatch {
	if interval <= 0 {
		interval = 5 * time.Millisecond
	}
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	w := &HeapWatch{stop: make(chan struct{}), done: make(chan struct{})}
	w.sample()
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.sample()
			}
		}
	}()
	return w
}

func (w *HeapWatch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if ms.HeapInuse <= cur || w.peak.CompareAndSwap(cur, ms.HeapInuse) {
			return
		}
	}
}

// Peak returns the highest HeapInuse observed so far, in bytes.
func (w *HeapWatch) Peak() uint64 { return w.peak.Load() }

// Stop takes a final sample, ends the sampling goroutine and returns the
// high-water mark in bytes. Stop is idempotent.
func (w *HeapWatch) Stop() uint64 {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
	w.sample()
	return w.peak.Load()
}
