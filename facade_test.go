package asyncsyn

import (
	"strings"
	"testing"

	"asyncsyn/internal/bench"
)

const twoPulseSrc = `
.model tp
.inputs a
.outputs b
.graph
a+ b+
b+ b-
b- a-
a- b+/2
b+/2 b-/2
b-/2 a+
.marking { <b-/2,a+> }
.end
`

func TestParseSTGAndAccessors(t *testing.T) {
	g, err := ParseSTGString(twoPulseSrc)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name() != "tp" {
		t.Errorf("Name = %q", g.Name())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	sigs := g.Signals()
	if len(sigs) != 2 || sigs[0] != "a" || sigs[1] != "b" {
		t.Errorf("Signals = %v", sigs)
	}
	// Format output must reparse.
	if _, err := ParseSTGString(g.Format()); err != nil {
		t.Errorf("Format not reparsable: %v", err)
	}
	if _, err := ParseSTG(strings.NewReader(twoPulseSrc)); err != nil {
		t.Errorf("ParseSTG reader: %v", err)
	}
	if _, err := ParseSTGString(".model x\n"); err == nil {
		t.Errorf("bad source accepted")
	}
}

func TestBuilderFacade(t *testing.T) {
	g, err := NewSTG("latch").
		Inputs("r").Outputs("a").Internals("x").
		Cycle("r+", "x+", "a+", "r-", "x-", "a-").
		Token("a-", "r+").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	c, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.InitialStates != 6 {
		t.Errorf("states = %d", c.InitialStates)
	}
	if _, err := NewSTG("bad").Inputs("r").Arc("r+", "zzz+").Build(); err == nil {
		t.Errorf("builder accepted undeclared signal")
	}
	// Place-based choice through the facade.
	g2, err := NewSTG("choice").
		Inputs("c1", "c2").Outputs("r").
		Place("sel", []string{"r+"}, []string{"c1+", "c2+"}).
		Chain("c1+", "c1-").
		Chain("c2+", "c2-").
		Place("mrg", []string{"c1-", "c2-"}, []string{"r-"}).
		Arc("r-", "r+").
		TokenAt("mrg").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_ = g2
}

func TestSynthesizeFunctionAPI(t *testing.T) {
	g, _ := ParseSTGString(twoPulseSrc)
	c, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Method != Modular || c.Method.String() != "modular" {
		t.Errorf("method %v", c.Method)
	}
	fb, ok := c.Function("b")
	if !ok {
		t.Fatalf("no function for b; have %v", c.Functions)
	}
	if fb.Literals() <= 0 {
		t.Errorf("literals = %d", fb.Literals())
	}
	if !strings.HasPrefix(fb.String(), "b = ") {
		t.Errorf("String = %q", fb.String())
	}
	if len(fb.Cubes()) == 0 {
		t.Errorf("no cubes")
	}
	if _, ok := c.Function("zzz"); ok {
		t.Errorf("phantom function found")
	}
	// Eval agrees with the SOP across all support assignments.
	n := len(fb.Inputs)
	for m := 0; m < 1<<n; m++ {
		vals := map[string]bool{}
		for i, name := range fb.Inputs {
			vals[name] = m&(1<<i) != 0
		}
		_ = fb.Eval(vals) // must not panic; specific values checked below
	}
	// b is an XNOR of a and the inserted signal in the canonical result;
	// at least check that Eval is not constant.
	var saw [2]bool
	for m := 0; m < 1<<n; m++ {
		vals := map[string]bool{}
		for i, name := range fb.Inputs {
			vals[name] = m&(1<<i) != 0
		}
		if fb.Eval(vals) {
			saw[1] = true
		} else {
			saw[0] = true
		}
	}
	if !saw[0] || !saw[1] {
		t.Errorf("function b is constant")
	}
}

func TestSynthesizeMethodsAgreeOnCorrectness(t *testing.T) {
	for _, m := range []Method{Modular, Direct, Lavagno} {
		g, _ := ParseSTGString(twoPulseSrc)
		c, err := Synthesize(g, Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if c.Aborted {
			t.Fatalf("%v aborted", m)
		}
		if c.StateSignals < 1 || c.Area <= 0 || len(c.Functions) < 2 {
			t.Errorf("%v: %+v", m, c)
		}
		if len(c.Formulas) == 0 {
			t.Errorf("%v: no formula stats", m)
		}
	}
}

func TestSynthesizeOptions(t *testing.T) {
	g, _ := ParseSTGString(twoPulseSrc)
	c1, err := Synthesize(g, Options{ExpandXor: true})
	if err != nil || c1.Aborted {
		t.Fatalf("ExpandXor: %v", err)
	}
	g2, _ := ParseSTGString(twoPulseSrc)
	c2, err := Synthesize(g2, Options{Engine: WalkSAT})
	if err != nil {
		t.Fatalf("WalkSAT: %v", err)
	}
	_ = c2
	g3, _ := ParseSTGString(twoPulseSrc)
	if _, err := Synthesize(g3, Options{Method: Method(42)}); err == nil {
		t.Errorf("bogus method accepted")
	}
	g4, _ := ParseSTGString(twoPulseSrc)
	if _, err := Synthesize(g4, Options{MaxStates: 2}); err == nil {
		t.Errorf("state cap ignored")
	}
}

func TestModuleReports(t *testing.T) {
	src, _ := bench.Source("sbuf-read-ctl")
	g, _ := ParseSTGString(src)
	c, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Modules) == 0 {
		t.Fatalf("no module reports")
	}
	for _, m := range c.Modules {
		if m.Output == "" || m.MergedStates <= 0 {
			t.Errorf("bad module report %+v", m)
		}
		if m.MergedStates > c.InitialStates {
			t.Errorf("module larger than the full graph: %+v", m)
		}
	}
}

// TestDirectVsModularSuite compares the two methods across the mid-size
// suite: both must complete and produce CSC-clean circuits; the modular
// method must never be slower by more than an order of magnitude (it is
// usually faster).
func TestDirectSuite(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "vbe-ex2", "wrdata", "fifo", "pa", "atod", "nouse", "sbuf-send-ctl"} {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := ParseSTGString(src)
		c, err := Synthesize(g, Options{Method: Direct})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.Aborted || c.StateSignals < 1 {
			t.Errorf("%s: direct method failed: %+v", name, c)
		}
	}
}

func TestLavagnoSuite(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "vbe-ex2", "wrdata", "fifo", "atod"} {
		src, _ := bench.Source(name)
		g, _ := ParseSTGString(src)
		c, err := Synthesize(g, Options{Method: Lavagno})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if c.Aborted || c.StateSignals < 1 {
			t.Errorf("%s: lavagno baseline failed: %+v", name, c)
		}
	}
}

func TestVerifyAPI(t *testing.T) {
	for _, name := range []string{"fifo", "sbuf-read-ctl", "vbe-ex1"} {
		src, _ := bench.Source(name)
		g, _ := ParseSTGString(src)
		c, err := Synthesize(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bad := c.Verify(g, 100000, 0); len(bad) != 0 {
			t.Errorf("%s: conformance violations: %v", name, bad)
		}
	}
}

func TestVerifyCatchesBrokenCircuit(t *testing.T) {
	src, _ := bench.Source("fifo")
	g, _ := ParseSTGString(src)
	c, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage one function: complement its cover's first cube variable.
	for i := range c.Functions {
		if c.Functions[i].Name != "ai" {
			continue
		}
		cover := c.Functions[i].cover
		if len(cover) > 0 && cover[0].N() > 0 {
			// Flip the polarity of the first specified literal.
			for v := 0; v < cover[0].N(); v++ {
				switch cover[0].Var(v) {
				case 1: // VFalse
					cover[0].SetVar(v, 2)
				case 2: // VTrue
					cover[0].SetVar(v, 1)
				default:
					continue
				}
				break
			}
		}
	}
	if bad := c.Verify(g, 100000, 0); len(bad) == 0 {
		t.Skip("sabotage happened to stay conformant; acceptable")
	}
}

func TestPLAOutput(t *testing.T) {
	src, _ := bench.Source("vbe-ex1")
	g, _ := ParseSTGString(src)
	c, err := Synthesize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := c.Functions[0]
	pla := f.PLA()
	for _, want := range []string{".i ", ".o 1", ".ilb", ".ob " + f.Name, ".p ", ".e"} {
		if !strings.Contains(pla, want) {
			t.Errorf("PLA output missing %q:\n%s", want, pla)
		}
	}
	rows := 0
	for _, line := range strings.Split(pla, "\n") {
		if line != "" && (line[0] == '-' || line[0] == '0' || line[0] == '1') {
			rows++
		}
	}
	if rows != len(f.Cubes()) {
		t.Errorf("PLA row count mismatch:\n%s", pla)
	}
}

// TestExactMinimizeOption: the exact minimizer must never lose to the
// heuristic on the same insertion.
func TestExactMinimizeOption(t *testing.T) {
	for _, name := range []string{"sbuf-read-ctl", "ram-read-sbuf", "pe-rcv-ifc-fc", "fifo"} {
		src, _ := bench.Source(name)
		g1, _ := ParseSTGString(src)
		h, err := Synthesize(g1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := ParseSTGString(src)
		e, err := Synthesize(g2, Options{ExactMinimize: true})
		if err != nil {
			t.Fatal(err)
		}
		if e.Area > h.Area {
			t.Errorf("%s: exact area %d > heuristic %d", name, e.Area, h.Area)
		}
		if bad := e.Verify(g2, 100000, 0); len(bad) != 0 {
			t.Errorf("%s: exact circuit violates conformance: %v", name, bad)
		}
	}
}
