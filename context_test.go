package asyncsyn

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"asyncsyn/internal/bench"
)

func loadBench(t *testing.T, name string) *STG {
	t.Helper()
	src, err := bench.Source(name)
	if err != nil {
		t.Fatal(err)
	}
	g, err := ParseSTGString(src)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestSynthesizeContextCancelMidSAT: canceling the context while the
// direct method's DPLL search is deep in mmu0's whole-graph formula (a
// multi-second search) must return within 50ms with an error matching
// both ErrCanceled and context.Canceled.
func TestSynthesizeContextCancelMidSAT(t *testing.T) {
	g := loadBench(t, "mmu0")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var canceledAt atomic.Int64
	timer := time.AfterFunc(20*time.Millisecond, func() {
		canceledAt.Store(time.Now().UnixNano())
		cancel()
	})
	defer timer.Stop()

	c, err := SynthesizeContext(ctx, g, Options{Method: Direct, MaxBacktracks: 1 << 40})
	returned := time.Now()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled run returned err=%v c=%+v", err, c)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled error should also match context.Canceled: %v", err)
	}
	at := canceledAt.Load()
	if at == 0 {
		t.Fatal("run finished before the cancel fired; pick a bigger benchmark")
	}
	if lag := returned.Sub(time.Unix(0, at)); lag > 50*time.Millisecond {
		t.Fatalf("returned %v after cancellation, want under 50ms", lag)
	}
	if c != nil {
		t.Fatalf("canceled run returned a circuit")
	}
}

// TestSynthesizeContextCancelModular: the modular pipeline honors an
// already-canceled context before doing any work.
func TestSynthesizeContextCancelModular(t *testing.T) {
	g := loadBench(t, "mmu0")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := SynthesizeContext(ctx, g, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled run returned %v", err)
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("pre-canceled run took %v", el)
	}
}

// TestOptionsTimeout: an expired Options.Timeout surfaces as an error
// matching both ErrCanceled and context.DeadlineExceeded.
func TestOptionsTimeout(t *testing.T) {
	g := loadBench(t, "mmu0")
	_, err := Synthesize(g, Options{Method: Direct, MaxBacktracks: 1 << 40, Timeout: 5 * time.Millisecond})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("timed-out run returned %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error should also match context.DeadlineExceeded: %v", err)
	}
}

// TestCancellationDoesNotPerturbResults: a generous timeout that never
// fires must leave the circuit bit-identical to an unbounded run — the
// cancellation polls are read-only.
func TestCancellationDoesNotPerturbResults(t *testing.T) {
	base, err := Synthesize(loadBench(t, "pa"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := Synthesize(loadBench(t, "pa"), Options{Timeout: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if base.Area != timed.Area || base.FinalSignals != timed.FinalSignals ||
		base.FinalStates != timed.FinalStates || len(base.Functions) != len(timed.Functions) {
		t.Fatalf("timeout-armed run differs: %+v vs %+v", base, timed)
	}
	for i := range base.Functions {
		if base.Functions[i].String() != timed.Functions[i].String() {
			t.Fatalf("function %d differs: %s vs %s", i, base.Functions[i], timed.Functions[i])
		}
	}
}

// TestJSONTracerWellFormed: a traced modular run emits one well-formed
// JSON line per stage boundary and per SAT formula, labelled with the
// run's model and method.
func TestJSONTracerWellFormed(t *testing.T) {
	var buf bytes.Buffer
	g := loadBench(t, "vbe-ex1")
	c, err := Synthesize(g, Options{Tracer: NewJSONTracer(&buf)})
	if err != nil {
		t.Fatal(err)
	}

	starts := make(map[string]int)
	ends := make(map[string]int)
	formulas := 0
	lines := 0
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		lines++
		var ev struct {
			Type   string  `json:"type"`
			Model  string  `json:"model"`
			Method string  `json:"method"`
			Stage  string  `json:"stage"`
			Status string  `json:"status"`
			Vars   int     `json:"vars"`
			MS     float64 `json:"ms"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d not well-formed JSON: %v\n%s", lines, err, line)
		}
		if ev.Model != "vbe-ex1" || ev.Method != "modular" {
			t.Fatalf("line %d mislabelled: %s", lines, line)
		}
		switch ev.Type {
		case "stage_start":
			starts[ev.Stage]++
		case "stage_end":
			ends[ev.Stage]++
		case "formula":
			formulas++
			if ev.Stage == "" || ev.Status == "" || ev.Vars == 0 {
				t.Fatalf("formula line %d incomplete: %s", lines, line)
			}
		default:
			t.Fatalf("line %d has unknown type %q", lines, ev.Type)
		}
	}
	for _, stage := range []string{"elaborate", "modules", "residual", "expand", "logic"} {
		if starts[stage] != 1 || ends[stage] != 1 {
			t.Fatalf("stage %q: %d starts, %d ends (want exactly 1 each)", stage, starts[stage], ends[stage])
		}
	}
	if formulas != len(c.Formulas) {
		t.Fatalf("%d formula events for %d solved formulas", formulas, len(c.Formulas))
	}
	if formulas == 0 {
		t.Fatal("no formula events")
	}
}

// TestStageStatsReported: every method's Circuit carries its pipeline's
// stage timings.
func TestStageStatsReported(t *testing.T) {
	want := map[Method][]string{
		Modular: {"elaborate", "modules", "residual", "expand", "logic"},
		Direct:  {"elaborate", "csc", "expand", "logic"},
		Lavagno: {"elaborate", "csc", "expand", "logic"},
	}
	for method, stages := range want {
		c, err := Synthesize(loadBench(t, "vbe-ex1"), Options{Method: method})
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if len(c.Stages) != len(stages) {
			t.Fatalf("%v: %d stages, want %d: %+v", method, len(c.Stages), len(stages), c.Stages)
		}
		for i, s := range c.Stages {
			if s.Name != stages[i] {
				t.Fatalf("%v stage %d = %q, want %q", method, i, s.Name, stages[i])
			}
			if s.Err != "" {
				t.Fatalf("%v stage %q failed: %s", method, s.Name, s.Err)
			}
		}
	}
}

// TestStateSignalsSingleSource: StateSignals is always the growth of the
// signal set — FinalSignals − InitialSignals — for every method
// (satellite of the redundant-assignment fix: the modular path used to
// overwrite the reconciled value with the raw insertion count, which
// disagrees whenever pruning or expansion refinement ran).
func TestStateSignalsSingleSource(t *testing.T) {
	for _, name := range []string{"vbe-ex1", "pa"} {
		var counts []int
		for _, method := range []Method{Modular, Direct, Lavagno} {
			c, err := Synthesize(loadBench(t, name), Options{Method: method})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, method, err)
			}
			if c.Aborted {
				continue
			}
			if c.StateSignals != c.FinalSignals-c.InitialSignals {
				t.Fatalf("%s/%v: StateSignals=%d but signals grew %d→%d",
					name, method, c.StateSignals, c.InitialSignals, c.FinalSignals)
			}
			counts = append(counts, c.StateSignals)
		}
		t.Logf("%s inserted per method: %v", name, counts)
	}
}
