package asyncsyn_test

// Facade contract for the sharded cluster: distribution is a pure
// deployment layer. A circuit synthesized through a router over
// peer-connected shards reports the same digest as the direct library
// call — the same invariant TestCacheBitIdentical pins for caching.
// (External test package: internal/server imports asyncsyn, so an
// in-package test would be an import cycle.)

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"asyncsyn"
	"asyncsyn/internal/bench"
	"asyncsyn/internal/server"
)

func TestClusterMatchesLibrary(t *testing.T) {
	// Two shards; the second pulls cache records from the first.
	var urls []string
	for i := 0; i < 2; i++ {
		cfg := server.Config{MaxInFlight: 2}
		if i > 0 {
			cfg.Peers = urls[:1]
		}
		s, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	rt, err := server.NewRouter(server.RouterConfig{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	for _, name := range []string{"vbe4a", "nak-pa", "fifo"} {
		src, err := bench.Source(name)
		if err != nil {
			t.Fatal(err)
		}
		stg, err := asyncsyn.ParseSTGString(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := asyncsyn.Synthesize(stg, asyncsyn.Options{DisableSolveCache: true, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}

		resp, err := http.Post(front.URL+"/v1/synthesize", "application/json",
			strings.NewReader(fmt.Sprintf(`{"bench":%q}`, name)))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			Digest string `json:"digest"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: cluster status %d", name, resp.StatusCode)
		}
		if out.Digest != c.Digest() {
			t.Errorf("%s: cluster digest %s != library %s", name, out.Digest, c.Digest())
		}
	}
}
