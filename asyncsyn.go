// Package asyncsyn synthesizes speed-independent asynchronous control
// circuits from Signal Transition Graph (STG) specifications.
//
// It implements the modular partitioning synthesis method of Puri and Gu
// (DAC 1994): the STG's state graph is partitioned, per output signal,
// into a small modular state graph; complete state coding (CSC) is
// enforced on each module by solving a small boolean satisfiability
// formula; and the resulting state-signal assignments are propagated back
// and integrated into one circuit. Two reference methods are included for
// comparison — the direct whole-graph SAT formulation of Vanbekbergen et
// al. and a Lavagno-Moon-style iterative state-assignment flow — together
// with a two-level logic minimizer that reports implementation area as
// the literal count of prime-irredundant covers.
//
// Typical use:
//
//	g, err := asyncsyn.ParseSTGString(src)
//	c, err := asyncsyn.Synthesize(g, asyncsyn.Options{})
//	for _, f := range c.Functions {
//	    fmt.Println(f)
//	}
package asyncsyn

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"asyncsyn/internal/benchrec"
	"asyncsyn/internal/core"
	"asyncsyn/internal/csc"
	"asyncsyn/internal/dot"
	"asyncsyn/internal/lavagno"
	"asyncsyn/internal/logic"
	"asyncsyn/internal/metrics"
	"asyncsyn/internal/modcache"
	"asyncsyn/internal/pipeline"
	"asyncsyn/internal/sg"
	"asyncsyn/internal/stg"
	"asyncsyn/internal/synerr"
	"asyncsyn/internal/trace"
)

// Error taxonomy. Every failure mode of the pipeline is identified by
// one of these sentinels, testable with errors.Is regardless of how many
// layers of context wrapping the error accumulated on the way up.
var (
	// ErrCanceled reports that the run was stopped by its context
	// (cancellation or Options.Timeout). Errors matching ErrCanceled
	// also match the underlying context error (context.Canceled or
	// context.DeadlineExceeded).
	ErrCanceled = synerr.ErrCanceled
	// ErrBacktrackLimit reports a SAT backtrack budget exhausted before a
	// verdict — the paper's "SAT Backtrack Limit" table entries. The
	// Synthesize facade maps it to Circuit.Aborted instead of an error.
	ErrBacktrackLimit = synerr.ErrBacktrackLimit
	// ErrStateLimit reports that reachability exceeded Options.MaxStates.
	ErrStateLimit = synerr.ErrStateLimit
	// ErrModuleUnsolvable reports a modular graph whose CSC constraints
	// admit no solution within the signal cap, even widened.
	ErrModuleUnsolvable = synerr.ErrModuleUnsolvable
	// ErrConflictsPersist reports coding conflicts surviving every
	// repair round (incremental insertion or expansion refinement).
	ErrConflictsPersist = synerr.ErrConflictsPersist
	// ErrParse reports an STG source that failed to parse or validate.
	// Every error returned by ParseSTG and ParseSTGString matches it;
	// the concrete cause (e.g. stg.ParseError with its line number)
	// stays reachable through errors.As/Unwrap.
	ErrParse = synerr.ErrParse
)

// Tracer receives synthesis progress events: one StageStart/StageEnd
// pair per pipeline stage and one FormulaSolved per SAT instance.
// Implementations must be safe for concurrent use.
type Tracer = trace.Tracer

// StageEvent describes a pipeline stage boundary.
type StageEvent = trace.StageEvent

// FormulaEvent describes one solved SAT formula.
type FormulaEvent = trace.FormulaEvent

// StageStat records one pipeline stage's timing in a Circuit.
type StageStat = pipeline.StageStat

// NewJSONTracer returns a Tracer writing one JSON object per line to w.
func NewJSONTracer(w io.Writer) Tracer { return trace.NewJSON(w) }

// NewLogTracer returns a Tracer writing human-readable lines to w.
func NewLogTracer(w io.Writer) Tracer { return trace.NewLog(w) }

// Metrics is a thread-safe set of atomic synthesis counters (SAT
// decisions/conflicts/propagations/learned clauses, WalkSAT flips, BDD
// nodes, state-graph states explored and merged, ESPRESSO passes,
// modular passes, formula sizes). Attach one via Options.Metrics; it
// accumulates across every run it is attached to, and each run's own
// delta is reported in Circuit.Counters and per stage in
// Circuit.Stages. Collection is zero-overhead when no collector is
// attached: hot paths consult the context once per coarse operation and
// all methods no-op on nil.
type Metrics = metrics.Collector

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics { return metrics.New() }

// SolveCache is a concurrency-safe module solve cache (see
// Options.Cache): it maps canonical module-problem signatures to solved
// state-signal phase columns, answering repeated solves — across
// outputs, benchmarks, or whole runs — with bit-identical replays. The
// name is an alias for the internal implementation, so the facade and
// the pipeline share one type.
type SolveCache = modcache.Cache

// NewSolveCache returns an empty in-memory solve cache, suitable for
// sharing via Options.Cache across any number of concurrent runs.
func NewSolveCache() *SolveCache { return modcache.New() }

// NewDiskSolveCache returns a solve cache backed by content-addressed
// JSON records under dir (created if missing), layered over an
// in-memory map — the cache Options.CacheDir would build, exposed so
// long-lived callers (the synthesis daemon) can share one disk-backed
// instance across every run.
func NewDiskSolveCache(dir string) (*SolveCache, error) { return modcache.NewDisk(dir) }

// storeOf adapts a possibly nil concrete cache to the modcache.Store
// interface the pipeline consumes. The explicit nil check matters: a
// typed nil *SolveCache assigned straight into the interface would not
// compare equal to nil downstream.
func storeOf(c *SolveCache) modcache.Store {
	if c == nil {
		return nil
	}
	return c
}

// solveCacheFor resolves the cache configuration of one run.
func solveCacheFor(opt Options) (*SolveCache, error) {
	switch {
	case opt.DisableSolveCache:
		return nil, nil
	case opt.Cache != nil:
		return opt.Cache, nil
	case opt.CacheDir != "":
		return modcache.NewDisk(opt.CacheDir)
	default:
		return modcache.New(), nil
	}
}

// STG is a parsed or programmatically built signal transition graph.
type STG struct {
	g *stg.G
}

// ParseSTG reads an STG in the astg/SIS ".g" format. Errors match
// ErrParse.
func ParseSTG(r io.Reader) (*STG, error) {
	g, err := stg.Parse(r)
	if err != nil {
		return nil, synerr.Parse(err)
	}
	return &STG{g: g}, nil
}

// ParseSTGString parses a ".g" source held in a string. Errors match
// ErrParse.
func ParseSTGString(src string) (*STG, error) {
	g, err := stg.ParseString(src)
	if err != nil {
		return nil, synerr.Parse(err)
	}
	return &STG{g: g}, nil
}

// Name returns the model name.
func (s *STG) Name() string { return s.g.Name }

// Format renders the STG back in ".g" format.
func (s *STG) Format() string { return stg.Format(s.g) }

// Signals returns the signal names in declaration order.
func (s *STG) Signals() []string { return s.g.SignalNames() }

// Validate checks structural well-formedness.
func (s *STG) Validate() error { return s.g.Validate() }

// DOT renders the STG in Graphviz format.
func (s *STG) DOT() string { return dot.STG(s.g) }

// Method selects the synthesis algorithm.
type Method int

const (
	// Modular is the paper's modular partitioning method (default).
	Modular Method = iota
	// Direct is the whole-graph SAT formulation (Vanbekbergen et al.,
	// "no decomposition" in the paper's Table 1).
	Direct
	// Lavagno is the iterative whole-graph state-assignment baseline in
	// the spirit of Lavagno-Moon (DAC'92).
	Lavagno
)

func (m Method) String() string {
	switch m {
	case Modular:
		return "modular"
	case Direct:
		return "direct"
	case Lavagno:
		return "lavagno"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// ParseMethod resolves a method name ("modular", "direct", "lavagno";
// "" selects the default). Shared by cmd/modsyn's flag and the
// daemon's request schema so the accepted spellings stay in one place.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "", "modular":
		return Modular, nil
	case "direct":
		return Direct, nil
	case "lavagno":
		return Lavagno, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

// Engine selects the SAT engine.
type Engine int

const (
	// DPLL is the complete branch-and-bound solver (default).
	DPLL Engine = iota
	// WalkSAT is the incomplete local-search solver.
	WalkSAT
	// BDD solves the constraints with a binary decision diagram and
	// returns the minimum-excitation model — the paper's closing pointer
	// to a BDD-based approach with further area reduction. Falls back to
	// DPLL when the diagram exceeds its node budget.
	BDD
	// Portfolio races DPLL against WalkSAT concurrently per formula,
	// preferring the complete engine's verdict deterministically and
	// consulting WalkSAT's model only when DPLL exhausts its backtrack
	// budget. Results never depend on goroutine timing.
	Portfolio
)

func (e Engine) String() string {
	switch e {
	case DPLL:
		return "dpll"
	case WalkSAT:
		return "walksat"
	case BDD:
		return "bdd"
	case Portfolio:
		return "portfolio"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine resolves an engine name ("dpll", "walksat", "bdd",
// "portfolio"; "" selects the default).
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "dpll":
		return DPLL, nil
	case "walksat":
		return WalkSAT, nil
	case "bdd":
		return BDD, nil
	case "portfolio":
		return Portfolio, nil
	}
	return 0, fmt.Errorf("unknown engine %q", s)
}

// Options configures Synthesize.
type Options struct {
	Method Method
	Engine Engine
	// MaxBacktracks bounds each SAT search (default 2,000,000); exceeding
	// it aborts the run with Circuit.Aborted set, mirroring the paper's
	// "SAT Backtrack Limit" table entries.
	MaxBacktracks int64
	// ExpandXor switches the CSC separation constraints to the paper's
	// non-auxiliary CNF expansion (exponential in the signal count); used
	// for clause-growth experiments.
	ExpandXor bool
	// FullSupport derives every logic function over all signals instead
	// of the per-output input set (ablation of the support restriction).
	FullSupport bool
	// ExactMinimize uses the exact minimum-literal two-level minimizer
	// (espresso's exact strategy, the paper's -S1) instead of the
	// heuristic loop; it falls back per function when primes explode.
	ExactMinimize bool
	// MaxStates caps state graph generation (default 100,000).
	MaxStates int
	// TokenBound is the per-place token bound (default 1: safe nets).
	TokenBound int
	// Workers bounds the worker pool used by the pipeline's independent
	// stages — pre-sort conflict scans, whole-graph CSC analysis, and
	// per-output logic derivation. 0 means GOMAXPROCS, 1 runs
	// sequentially. The synthesized circuit (areas, covers, inserted
	// signal names, clause counts) is bit-for-bit identical for every
	// value: parallel stages always merge their results in a fixed
	// order, never first-write-wins.
	Workers int
	// Timeout bounds the wall-clock time of a run (0 = none). An expired
	// timeout surfaces as an error matching ErrCanceled and
	// context.DeadlineExceeded. Uncanceled runs are unaffected: the
	// cancellation polls are read-only, so output stays bit-identical.
	Timeout time.Duration
	// Tracer, when non-nil, receives stage and formula events for the
	// run (see NewJSONTracer and NewLogTracer).
	Tracer Tracer
	// Metrics, when non-nil, accumulates the run's counters (see
	// Metrics); the run's delta also lands in Circuit.Counters and, per
	// stage, in Circuit.Stages. The deterministic counters (states,
	// clauses, modules, and — under the default complete engine — the
	// SAT search statistics) are identical for every Workers value.
	Metrics *Metrics
	// Cache, when non-nil, is a module solve cache shared across runs:
	// module CSC problems whose canonical signatures (and solver
	// options) match a previous solve are answered by bit-identical
	// replays instead of fresh SAT searches. Create one with
	// NewSolveCache. When nil, each run uses its own in-memory cache,
	// which still deduplicates isomorphic modules within the run.
	Cache *SolveCache
	// CacheDir, when non-empty (and Cache is nil), backs the run's
	// solve cache with content-addressed JSON records under this
	// directory, persisting solves across processes. The directory is
	// created if missing.
	CacheDir string
	// DisableSolveCache turns the module solve cache off entirely;
	// every formula is searched from scratch. Results are identical
	// with or without the cache (pinned by TestCacheBitIdentical) —
	// this exists for measurement and debugging.
	DisableSolveCache bool
	// DisableSpeculation runs the modular method's per-output module
	// solves strictly sequentially even when Workers > 1. By default the
	// module stage solves outputs speculatively in parallel — each
	// against a copy-on-write snapshot of the state-signal columns —
	// and commits results in the canonical most-conflicted-first order,
	// discarding and re-solving any speculation a committed predecessor
	// invalidated. Results are bit-identical either way (pinned by
	// TestSpeculationParity); this exists for measurement and debugging.
	DisableSpeculation bool
	// DisableIncrementalSAT forces each SAT formula of a widening chain
	// to be re-encoded and solved from scratch instead of as an
	// assumption-guarded step of one persistent incremental solver.
	// Results are bit-identical either way (pinned by
	// TestIncrementalMatchesFresh) — this exists for measurement and
	// debugging.
	DisableIncrementalSAT bool
	// DisableStreaming reverts the expansion→analysis→verification spine
	// to the materializing paths: Expand builds the whole expanded state
	// graph in memory before conflict scanning and logic derivation
	// consume it, and Verify explores the closed-loop product one scalar
	// configuration at a time. The default streams the expansion in
	// topological waves (peak heap bounded by frontier width, not total
	// state count) and simulates 64 configurations per word. Results are
	// bit-identical either way — digests, counters and violations are
	// pinned equal by TestStreamingMatchesLegacy — this exists for
	// measurement, debugging, and callers that need the materialized
	// graph (see core.Result.Expanded).
	DisableStreaming bool
}

// FormulaStat describes one SAT instance solved during synthesis.
type FormulaStat struct {
	Output   string // output whose modular graph produced it ("" = global)
	Signals  int    // state signals attempted
	Vars     int
	Clauses  int
	Literals int
	Status   string // "SAT", "UNSAT", "BACKTRACK-LIMIT"
	Engine   string // engine that decided it (portfolio runs record the winner)
	// Cached reports that the instance was replayed from the module
	// solve cache instead of being searched.
	Cached bool
	Time   time.Duration
}

// Function is a synthesized next-state logic function in two-level
// sum-of-products form over its support signals.
type Function struct {
	Name   string
	Inputs []string

	cover logic.Cover
}

// Literals returns the unfactored literal count (the paper's area unit).
func (f Function) Literals() int { return f.cover.Literals() }

// SOP renders the cover as a sum-of-products expression.
func (f Function) SOP() string { return f.cover.Format(f.Inputs) }

// String renders the function as an equation.
func (f Function) String() string { return fmt.Sprintf("%s = %s", f.Name, f.SOP()) }

// Cubes returns the cover in PLA-style rows over Inputs.
func (f Function) Cubes() []string {
	out := make([]string, len(f.cover))
	for i, c := range f.cover {
		out[i] = c.String()
	}
	return out
}

// Eval evaluates the function for an assignment of its inputs.
func (f Function) Eval(values map[string]bool) bool {
	var m uint64
	for i, name := range f.Inputs {
		if values[name] {
			m |= 1 << i
		}
	}
	return f.cover.Eval(m)
}

// ModuleReport describes one per-output modular pass.
type ModuleReport struct {
	Output       string
	InputSet     []string
	MergedStates int
	Conflicts    int
	NewSignals   int
	// Widened is true when the output's restricted module was unsolvable
	// and the reported pass ran on a widened input set.
	Widened bool
}

// Circuit is the result of synthesis.
type Circuit struct {
	Name   string
	Method Method

	InitialStates  int
	InitialSignals int
	FinalStates    int
	FinalSignals   int
	StateSignals   int

	// Area is the total literal count of all non-input functions.
	Area int
	// Aborted is set when a SAT backtrack limit was exhausted; the
	// remaining fields describe the partial run.
	Aborted bool
	// CPU is the wall-clock synthesis time.
	CPU time.Duration

	Functions []Function
	Modules   []ModuleReport // modular method only
	Formulas  []FormulaStat
	// Stages records the per-stage timings of the pipeline run; when
	// Options.Metrics is set each stage also carries the counters it
	// advanced.
	Stages []StageStat
	// Counters holds this run's metrics deltas keyed by their stable
	// schema names (sat_decisions, sg_states, modules, ...); nil unless
	// Options.Metrics was set.
	Counters map[string]int64

	// initialLevels records the reset level of every signal (including
	// inserted state signals) for closed-loop verification.
	initialLevels map[string]bool
	// scalarSim records Options.DisableStreaming at synthesis time so
	// Verify picks the matching simulation runner (scalar walker under
	// the legacy materializing mode, bit-sliced otherwise).
	scalarSim bool
}

// setStateSignals fixes the single source of truth for the inserted
// state-signal count: the growth of the signal set when the final
// (expanded) graph exists — which already accounts for pruning and
// expansion-refinement signals — and the solver's inserted count
// otherwise (aborted runs that never reached expansion).
func (c *Circuit) setStateSignals(inserted int) {
	if c.FinalSignals > 0 {
		c.StateSignals = c.FinalSignals - c.InitialSignals
	} else {
		c.StateSignals = inserted
	}
}

// Digest returns a short hash of the circuit's machine-independent
// outputs: the final shape (states, signals, state signals, area) and
// every synthesized equation. Two runs that produce bit-identical
// circuits produce equal digests regardless of Workers, caching, host
// or transport; any behaviour change to a cover moves it. cmd/bench
// records it in BENCH_*.json rows and the daemon returns it with every
// response, so HTTP results are directly comparable to library calls.
func (c *Circuit) Digest() string {
	parts := []string{fmt.Sprintf("shape %d/%d/%d/%d", c.FinalStates, c.FinalSignals, c.StateSignals, c.Area)}
	for _, f := range c.Functions {
		parts = append(parts, f.String())
	}
	return benchrec.Digest(parts)
}

// Function returns the function driving the named signal.
func (c *Circuit) Function(name string) (Function, bool) {
	for _, f := range c.Functions {
		if f.Name == name {
			return f, true
		}
	}
	return Function{}, false
}

// Synthesize derives a speed-independent circuit from an STG with the
// selected method. A non-nil error reports an invalid or unsupported
// specification; a backtrack-limit abort is reported via Circuit.Aborted
// instead (partial statistics are still returned).
func Synthesize(s *STG, opt Options) (*Circuit, error) {
	return SynthesizeContext(context.Background(), s, opt)
}

// SynthesizeContext is Synthesize under a caller-supplied context:
// canceling ctx (or exceeding Options.Timeout) stops the run promptly —
// every long-running loop in the pipeline polls the context, down to
// the SAT engines' inner branch loops — and returns an error matching
// ErrCanceled. Uncanceled runs produce bit-identical circuits to
// Synthesize: the polls are read-only.
func SynthesizeContext(ctx context.Context, s *STG, opt Options) (*Circuit, error) {
	start := time.Now()
	if opt.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
		defer cancel()
	}
	if opt.Tracer != nil {
		ctx = trace.With(ctx, opt.Tracer, s.g.Name, opt.Method.String())
	}
	if opt.Metrics != nil {
		ctx = metrics.With(ctx, opt.Metrics)
	}
	before := opt.Metrics.Snapshot()
	cache, err := solveCacheFor(opt)
	if err != nil {
		return nil, err
	}
	var c *Circuit
	switch opt.Method {
	case Modular:
		c, err = synthesizeModular(ctx, s, opt, cache, start)
	case Direct, Lavagno:
		c, err = synthesizeWholeGraph(ctx, s, opt, cache, start)
	default:
		return nil, fmt.Errorf("asyncsyn: unknown method %v", opt.Method)
	}
	if c != nil {
		// The collector may be shared across runs; the circuit reports
		// only this run's delta — restricted to the deterministic
		// counters, so the map is identical for every Workers value
		// (speculation telemetry stays visible on the collector itself
		// and in the Prometheus exposition).
		c.Counters = opt.Metrics.Snapshot().DeterministicDelta(before)
	}
	return c, err
}

func sgOptions(opt Options) sg.Options {
	return sg.Options{Bound: opt.TokenBound, MaxStates: opt.MaxStates}
}

// finishAborted maps the internal error taxonomy to the facade's abort
// contract: a backtrack-limit exhaustion anywhere in the pipeline is not
// an error but a reported abort (the paper's Table 1 prints those runs
// with their partial statistics). Every other error — including
// cancellation — surfaces as an error.
func finishAborted(c *Circuit, err error, start time.Time) (*Circuit, error, bool) {
	c.CPU = time.Since(start)
	if err == nil {
		return c, nil, true
	}
	if errors.Is(err, synerr.ErrBacktrackLimit) && !errors.Is(err, synerr.ErrCanceled) {
		c.Aborted = true
		return c, nil, true
	}
	return nil, err, false
}

func synthesizeModular(ctx context.Context, s *STG, opt Options, cache *SolveCache, start time.Time) (*Circuit, error) {
	res, err := core.Synthesize(ctx, s.g, core.Options{
		SAT: core.SATOptions{
			Engine:        cscEngine(opt.Engine),
			Encoding:      csc.Options{ExpandXor: opt.ExpandXor},
			MaxBacktracks: opt.MaxBacktracks,
			Cache:         storeOf(cache),
			NoIncremental: opt.DisableIncrementalSAT,
		},
		StateGraph:         sgOptions(opt),
		FullSupport:        opt.FullSupport,
		ExactLogic:         opt.ExactMinimize,
		Workers:            opt.Workers,
		DisableStreaming:   opt.DisableStreaming,
		DisableSpeculation: opt.DisableSpeculation,
	})
	if res == nil {
		return nil, err
	}
	c := &Circuit{
		Name: res.Name, Method: Modular,
		InitialStates: res.InitialStates, InitialSignals: res.InitialSignals,
		FinalStates: res.FinalStates, FinalSignals: res.FinalSignals,
		Area: res.Area, Stages: res.Stages,
	}
	c.setStateSignals(res.Inserted)
	for _, o := range res.Outputs {
		c.Modules = append(c.Modules, ModuleReport{
			Output: o.Output, InputSet: o.InputSet,
			MergedStates: o.MergedStates, Conflicts: o.Ncsc, NewSignals: o.NewSignals,
			Widened: o.Widened,
		})
		for _, f := range o.Formulas {
			c.Formulas = append(c.Formulas, formulaStat(o.Output, f))
		}
	}
	for _, f := range res.Fallback {
		c.Formulas = append(c.Formulas, formulaStat("", f))
	}
	for _, f := range res.Functions {
		c.Functions = append(c.Functions, newFunction(f))
	}
	c.initialLevels = initialLevelsOf(res.View)
	c.scalarSim = opt.DisableStreaming
	c, err, _ = finishAborted(c, err, start)
	return c, err
}

// synthesizeWholeGraph runs the Direct and Lavagno baselines as a stage
// list on the shared pipeline driver: elaborate → csc → expand → logic.
func synthesizeWholeGraph(ctx context.Context, s *STG, opt Options, cache *SolveCache, start time.Time) (*Circuit, error) {
	c := &Circuit{Name: s.g.Name, Method: opt.Method}
	coreOpt := core.Options{SAT: core.SATOptions{
		Engine:        cscEngine(opt.Engine),
		Encoding:      csc.Options{ExpandXor: opt.ExpandXor},
		MaxBacktracks: opt.MaxBacktracks,
		Cache:         storeOf(cache),
		NoIncremental: opt.DisableIncrementalSAT,
	}, ExactLogic: opt.ExactMinimize, Workers: opt.Workers,
		DisableStreaming: opt.DisableStreaming}

	var (
		full     *sg.Graph
		view     *sg.Stream
		expanded *sg.Graph
		inserted int
	)
	stages := []pipeline.Stage{
		{Name: "elaborate", Run: func(ctx context.Context) error {
			g, err := sg.FromSTGContext(ctx, s.g, sgOptions(opt))
			if err != nil {
				return err
			}
			full = g
			c.InitialStates = full.NumStates()
			c.InitialSignals = len(full.Base)
			return nil
		}},
		{Name: "csc", Run: func(ctx context.Context) error {
			switch opt.Method {
			case Direct:
				dr, err := csc.Solve(ctx, full, csc.SolveOptions{
					Engine:        cscEngine(opt.Engine),
					Encoding:      csc.Options{ExpandXor: opt.ExpandXor},
					MaxBacktracks: opt.MaxBacktracks,
					Cache:         storeOf(cache),
					NoIncremental: opt.DisableIncrementalSAT,
				})
				if dr != nil {
					inserted = dr.Inserted
					for _, f := range dr.Formulas {
						c.Formulas = append(c.Formulas, formulaStat("", f))
					}
				}
				return err
			default: // Lavagno
				lr, err := lavagno.Solve(ctx, full, lavagno.Options{MaxBacktracks: opt.MaxBacktracks})
				if lr != nil {
					inserted = lr.Inserted
					for _, f := range lr.Formulas {
						c.Formulas = append(c.Formulas, formulaStat("", f))
					}
				}
				return err
			}
		}},
		{Name: "expand", Run: func(ctx context.Context) error {
			v, exp, _, fallback, err := core.ExpandToCSC(ctx, full, coreOpt)
			for _, f := range fallback {
				c.Formulas = append(c.Formulas, formulaStat("", f))
			}
			if err != nil {
				return err
			}
			view, expanded = v, exp
			c.FinalStates = view.NumStates()
			c.FinalSignals = len(view.Base)
			return nil
		}},
		{Name: "logic", Run: func(ctx context.Context) error {
			var src core.LogicSource = view
			if expanded != nil {
				src = expanded
			}
			fns, err := core.DeriveLogic(ctx, src, full, nil, nil, coreOpt)
			if err != nil {
				return err
			}
			for _, f := range fns {
				nf := newFunction(f)
				c.Functions = append(c.Functions, nf)
				c.Area += nf.Literals()
			}
			c.initialLevels = initialLevelsOf(view)
			c.scalarSim = opt.DisableStreaming
			return nil
		}},
	}
	stats, err := pipeline.Run(ctx, stages)
	c.Stages = stats
	c.setStateSignals(inserted)
	c, err, _ = finishAborted(c, err, start)
	return c, err
}

// initialLevelsOf extracts the reset code of the final state space from
// its column view (nil on aborted runs that never reached expansion).
func initialLevelsOf(v *sg.Stream) map[string]bool {
	if v == nil {
		return nil
	}
	levels := make(map[string]bool, len(v.Base))
	code := v.InitialCode()
	for i, b := range v.Base {
		levels[b.Name] = code&(1<<i) != 0
	}
	return levels
}

func cscEngine(e Engine) csc.Engine {
	switch e {
	case WalkSAT:
		return csc.WalkSAT
	case BDD:
		return csc.BDD
	case Portfolio:
		return csc.Portfolio
	default:
		return csc.DPLL
	}
}

func formulaStat(output string, f csc.FormulaStats) FormulaStat {
	return FormulaStat{
		Output: output, Signals: f.Signals, Vars: f.Vars,
		Clauses: f.Clauses, Literals: f.Literals,
		Status: f.Status.String(), Engine: f.Engine, Cached: f.Cached,
		Time: f.SolveTime,
	}
}

func newFunction(f core.Function) Function {
	return Function{Name: f.Name, Inputs: f.Vars, cover: f.Cover}
}
